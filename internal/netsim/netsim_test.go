package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

func newNet(t *testing.T, top *topology.Topology) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, top)
}

func TestMulticastScopedByTTL(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 3)) // hosts 0-2, 3-5
	got := map[topology.HostID]int{}
	for h := topology.HostID(0); h < 6; h++ {
		h := h
		ep := n.Endpoint(h)
		ep.Join(7)
		ep.SetHandler(func(pkt Packet) { got[h]++ })
	}
	n.Endpoint(0).Multicast(7, 1, []byte("hello"))
	eng.RunAll()
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("same-switch hosts missed TTL1 multicast: %v", got)
	}
	if got[3] != 0 || got[4] != 0 || got[5] != 0 {
		t.Fatalf("TTL1 multicast leaked across router: %v", got)
	}
	if got[0] != 0 {
		t.Fatalf("sender received own multicast: %v", got)
	}
	n.Endpoint(0).Multicast(7, 2, []byte("hello"))
	eng.RunAll()
	for h := topology.HostID(1); h < 6; h++ {
		want := 2
		if h >= 3 {
			want = 1
		}
		if got[h] != want {
			t.Fatalf("after TTL2: got[%d] = %d, want %d (%v)", h, got[h], want, got)
		}
	}
}

func TestMulticastRequiresSubscription(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(3))
	recv := 0
	n.Endpoint(1).SetHandler(func(pkt Packet) { recv++ })
	n.Endpoint(2).Join(9)
	n.Endpoint(2).SetHandler(func(pkt Packet) { recv += 100 })
	n.Endpoint(0).Multicast(9, 1, []byte("x"))
	eng.RunAll()
	if recv != 100 {
		t.Fatalf("recv = %d, want only subscribed host (100)", recv)
	}
	n.Endpoint(2).Leave(9)
	n.Endpoint(0).Multicast(9, 1, []byte("x"))
	eng.RunAll()
	if recv != 100 {
		t.Fatalf("recv = %d after Leave, want 100", recv)
	}
}

func TestUnicastLatencyAndDelivery(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 2))
	var at time.Duration = -1
	n.Endpoint(3).SetHandler(func(pkt Packet) {
		at = eng.Now()
		if pkt.Src != 0 || pkt.Dst != 3 || pkt.Multicast() {
			t.Errorf("bad packet metadata: %+v", pkt)
		}
	})
	if !n.Endpoint(0).Unicast(3, []byte("ping")) {
		t.Fatal("Unicast returned false on connected hosts")
	}
	eng.RunAll()
	want := n.Topology().UnicastLatency(0, 3)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestDownEndpointNeitherSendsNorReceives(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(3))
	recv := 0
	for _, h := range []topology.HostID{0, 1, 2} {
		n.Endpoint(h).Join(1)
		n.Endpoint(h).SetHandler(func(pkt Packet) { recv++ })
	}
	n.Endpoint(1).SetUp(false)
	n.Endpoint(0).Multicast(1, 1, []byte("x"))
	eng.RunAll()
	if recv != 1 {
		t.Fatalf("recv = %d, want 1 (only host 2)", recv)
	}
	n.Endpoint(1).Multicast(1, 1, []byte("x"))
	eng.RunAll()
	if recv != 1 {
		t.Fatalf("down endpoint sent a packet; recv = %d", recv)
	}
	if !n.Endpoint(1).Unicast(0, []byte("x")) == false {
		// Unicast from a down endpoint must report false.
		t.Fatal("Unicast from down endpoint returned true")
	}
}

func TestDownBetweenSendAndDelivery(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(2))
	recv := 0
	n.Endpoint(1).Join(1)
	n.Endpoint(1).SetHandler(func(pkt Packet) { recv++ })
	n.Endpoint(0).Multicast(1, 1, []byte("x"))
	n.Endpoint(1).SetUp(false) // goes down before the packet lands
	eng.RunAll()
	if recv != 0 {
		t.Fatalf("packet delivered to endpoint that went down in flight")
	}
}

func TestLossModel(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(2))
	n.SetLossProbability(0.5)
	recv := 0
	n.Endpoint(1).Join(1)
	n.Endpoint(1).SetHandler(func(pkt Packet) { recv++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Endpoint(0).Multicast(1, 1, []byte("x"))
	}
	eng.RunAll()
	if recv < total/3 || recv > total*2/3 {
		t.Fatalf("recv = %d of %d with p=0.5; loss model broken", recv, total)
	}
	st := n.Endpoint(1).Stats()
	if st.Dropped != uint64(total-recv) {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, total-recv)
	}
}

func TestFilterVeto(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(2))
	recv := 0
	n.Endpoint(1).Join(1)
	n.Endpoint(1).SetHandler(func(pkt Packet) { recv++ })
	n.Endpoint(1).SetFilter(func(pkt Packet) bool { return string(pkt.Payload) != "drop" })
	n.Endpoint(0).Multicast(1, 1, []byte("drop"))
	n.Endpoint(0).Multicast(1, 1, []byte("keep"))
	eng.RunAll()
	if recv != 1 {
		t.Fatalf("recv = %d, want 1", recv)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(3))
	for _, h := range []topology.HostID{0, 1, 2} {
		n.Endpoint(h).Join(1)
	}
	payload := make([]byte, 100)
	n.Endpoint(0).Multicast(1, 1, payload)
	eng.RunAll()
	s0 := n.Endpoint(0).Stats()
	if s0.PktsSent != 1 || s0.BytesSent != 128 {
		t.Fatalf("sender stats = %+v, want 1 pkt / 128 B", s0)
	}
	s1 := n.Endpoint(1).Stats()
	if s1.PktsRecv != 1 || s1.BytesRecv != 128 || s1.MulticastCopies != 1 {
		t.Fatalf("receiver stats = %+v", s1)
	}
	tot := n.TotalStats()
	if tot.PktsSent != 1 || tot.PktsRecv != 2 || tot.BytesRecv != 256 {
		t.Fatalf("total stats = %+v", tot)
	}
	n.ResetStats()
	if got := n.TotalStats(); got != (Stats{}) {
		t.Fatalf("stats after reset = %+v", got)
	}
}

func TestWANByteAccounting(t *testing.T) {
	eng, n := newNet(t, topology.MultiDC(2, 1, 2)) // hosts 0,1 DC0; 2,3 DC1
	n.Endpoint(2).SetHandler(func(pkt Packet) {})
	n.Endpoint(0).Unicast(2, make([]byte, 72)) // 100 on wire
	n.Endpoint(0).Unicast(1, make([]byte, 72)) // intra-DC
	eng.RunAll()
	if n.WANBytes() != 100 {
		t.Fatalf("WANBytes = %d, want 100", n.WANBytes())
	}
}

func TestLatencyJitterReorders(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 2))
	n.SetLatencyJitter(0.9)
	var order []int
	n.Endpoint(3).SetHandler(func(pkt Packet) {
		order = append(order, int(pkt.Payload[0]))
	})
	for i := 0; i < 200; i++ {
		n.Endpoint(0).Unicast(3, []byte{byte(i)})
	}
	eng.RunAll()
	if len(order) != 200 {
		t.Fatalf("delivered %d of 200", len(order))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("90%% jitter produced no reordering")
	}
}

func TestDuplicateDelivery(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(2))
	n.SetDuplicateProbability(0.5)
	recv := 0
	n.Endpoint(1).Join(1)
	n.Endpoint(1).SetHandler(func(pkt Packet) { recv++ })
	const total = 1000
	for i := 0; i < total; i++ {
		n.Endpoint(0).Multicast(1, 1, []byte("x"))
	}
	eng.RunAll()
	if recv < total+total/3 || recv > total+total*2/3 {
		t.Fatalf("recv = %d for %d sends at p_dup=0.5", recv, total)
	}
}

func TestJitterValidation(t *testing.T) {
	_, n := newNet(t, topology.FlatLAN(2))
	for _, bad := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("jitter %v accepted", bad)
				}
			}()
			n.SetLatencyJitter(bad)
		}()
	}
}

func TestUnicastAcrossPartitionFails(t *testing.T) {
	_, n := newNet(t, topology.Clustered(2, 2))
	sw0, _ := n.Topology().FindDevice("sw0")
	n.Topology().FailDevice(sw0.ID)
	if n.Endpoint(0).Unicast(3, []byte("x")) {
		t.Fatal("Unicast across partition returned true")
	}
}

func TestMulticastAfterPartition(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 2))
	recv := map[topology.HostID]int{}
	for h := topology.HostID(0); h < 4; h++ {
		h := h
		n.Endpoint(h).Join(1)
		n.Endpoint(h).SetHandler(func(pkt Packet) { recv[h]++ })
	}
	core, _ := n.Topology().FindDevice("core")
	n.Topology().FailDevice(core.ID)
	n.Endpoint(0).Multicast(1, 2, []byte("x"))
	eng.RunAll()
	if recv[1] != 1 {
		t.Fatal("same-switch delivery broken by core failure")
	}
	if recv[2] != 0 || recv[3] != 0 {
		t.Fatalf("multicast crossed failed core router: %v", recv)
	}
}

func devID(t *testing.T, top *topology.Topology, name string) topology.DeviceID {
	t.Helper()
	d, ok := top.FindDevice(name)
	if !ok {
		t.Fatalf("no device named %q", name)
	}
	return d.ID
}

func TestLinkProfileLossOnlyOnMarkedPath(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 3)) // group 0: hosts 0-2 on sw0, group 1: 3-5 on sw1
	got := map[topology.HostID]int{}
	for h := topology.HostID(0); h < 6; h++ {
		h := h
		ep := n.Endpoint(h)
		ep.Join(7)
		ep.SetHandler(func(pkt Packet) { got[h]++ })
	}
	// Kill everything crossing sw1's uplink; intra-group paths untouched.
	n.SetLinkProfile(devID(t, n.top, "sw1"), devID(t, n.top, "core"), LinkProfile{Loss: 0.999999999})
	const rounds = 20
	for i := 0; i < rounds; i++ {
		n.Endpoint(0).Multicast(7, 2, []byte("x"))
	}
	eng.RunAll()
	if got[1] != rounds || got[2] != rounds {
		t.Fatalf("same-group deliveries suffered link loss: %v", got)
	}
	if got[3]+got[4]+got[5] > 1 { // ~1e-9 chance per delivery
		t.Fatalf("cross-uplink deliveries survived loss=~1 profile: %v", got)
	}
}

func TestLinkProfileUnicastPath(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 3))
	recv := 0
	n.Endpoint(4).SetHandler(func(pkt Packet) { recv++ })
	n.Endpoint(5).SetHandler(func(pkt Packet) { recv += 100 })
	n.SetLinkProfile(devID(t, n.top, "sw1"), devID(t, n.top, "core"), LinkProfile{Loss: 0.999999999})
	for i := 0; i < 10; i++ {
		if !n.Endpoint(0).Unicast(4, []byte("x")) { // crosses the degraded uplink
			t.Fatal("Unicast reported unreachable; loss must stay silent")
		}
		if !n.Endpoint(3).Unicast(5, []byte("x")) { // same switch, unaffected
			t.Fatal("intra-group Unicast reported unreachable")
		}
	}
	eng.RunAll()
	if recv/100 != 10 {
		t.Fatalf("intra-group unicast suffered link loss: recv=%d", recv)
	}
	if recv%100 > 1 {
		t.Fatalf("cross-uplink unicast survived loss=~1 profile: recv=%d", recv)
	}
}

func TestLinkProfileComposesWithGlobal(t *testing.T) {
	_, n := newNet(t, topology.FlatLAN(2))
	n.SetLossProbability(0.5)
	n.SetLatencyJitter(0.1)
	bit := n.top.MarkLink(devID(t, n.top, "sw0"), devID(t, n.top, "node000"))
	for len(n.profiles) <= bit {
		n.profiles = append(n.profiles, LinkProfile{})
	}
	n.profiles[bit] = LinkProfile{Loss: 0.5, Jitter: 0.4, Dup: 0.25}
	loss, jitter, dup := n.compose(topology.MarkSetOf(bit))
	if loss != 0.75 {
		t.Fatalf("composed loss = %v, want 0.75", loss)
	}
	if jitter != 0.4 {
		t.Fatalf("composed jitter = %v, want max(0.1, 0.4)", jitter)
	}
	if dup != 0.25 {
		t.Fatalf("composed dup = %v, want 0.25", dup)
	}
	// Unmarked paths keep the global knobs.
	loss, jitter, dup = n.compose(topology.MarkSet{})
	if loss != 0.5 || jitter != 0.1 || dup != 0 {
		t.Fatalf("compose(empty) = %v/%v/%v, want globals 0.5/0.1/0", loss, jitter, dup)
	}
}

func TestLinkProfileZeroRestoresDefaults(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 3))
	got := 0
	n.Endpoint(3).Join(7)
	n.Endpoint(3).SetHandler(func(pkt Packet) { got++ })
	n.SetLinkProfile(devID(t, n.top, "sw1"), devID(t, n.top, "core"), LinkProfile{Loss: 0.999999999})
	n.Endpoint(0).Multicast(7, 2, []byte("x"))
	eng.RunAll()
	lost := got == 0
	n.SetLinkProfile(devID(t, n.top, "sw1"), devID(t, n.top, "core"), LinkProfile{})
	const rounds = 5
	for i := 0; i < rounds; i++ {
		n.Endpoint(0).Multicast(7, 2, []byte("x"))
	}
	eng.RunAll()
	if !lost {
		t.Fatalf("profile with loss ~1 delivered anyway")
	}
	if got != rounds {
		t.Fatalf("zero profile did not restore lossless delivery: got %d of %d", got, rounds)
	}
}

func TestLinkProfileValidation(t *testing.T) {
	_, n := newNet(t, topology.FlatLAN(2))
	for _, p := range []LinkProfile{{Loss: 1}, {Loss: -0.1}, {Jitter: 1.5}, {Dup: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkProfile(%+v) did not panic", p)
				}
			}()
			n.SetLinkProfile(devID(t, n.top, "sw0"), topology.DeviceID(0), p)
		}()
	}
}

// TestFanoutCacheRebuildsOnRouterFailure drives the cached multicast fan-out
// across a mid-run router failure: the cache must be rebuilt when the
// topology epoch bumps (no stale deliveries across the dead router, no
// missed hosts after the repair) and when subscriptions change.
func TestFanoutCacheRebuildsOnRouterFailure(t *testing.T) {
	eng, n := newNet(t, topology.Clustered(2, 3)) // hosts 0-2 on sw0, 3-5 on sw1
	const ch = ChannelID(7)
	recv := map[topology.HostID]int{}
	for h := topology.HostID(1); h < 6; h++ {
		h := h
		n.Endpoint(h).Join(ch)
		n.Endpoint(h).SetHandler(func(pkt Packet) { recv[h]++ })
	}
	send := func() map[topology.HostID]int {
		clear(recv)
		n.Endpoint(0).Multicast(ch, 2, []byte("x"))
		eng.RunAll()
		return recv
	}

	if got := send(); len(got) != 5 { // warm the cache
		t.Fatalf("warm-up multicast reached %v, want all 5 receivers", got)
	}
	core := devID(t, n.top, "core")
	n.top.FailDevice(core)
	if got := send(); got[1] != 1 || got[2] != 1 || len(got) != 2 {
		t.Fatalf("with core failed, multicast reached %v, want only hosts 1,2 (stale fan-out cache?)", got)
	}
	n.top.RepairDevice(core)
	if got := send(); len(got) != 5 {
		t.Fatalf("after repair, multicast reached %v, want all 5 receivers again", got)
	}

	// Subscription changes must invalidate the cache too.
	n.Endpoint(2).Leave(ch)
	if got := send(); got[2] != 0 || len(got) != 4 {
		t.Fatalf("after Leave, multicast reached %v, want hosts 1,3,4,5", got)
	}
	n.Endpoint(2).Join(ch)
	if got := send(); len(got) != 5 {
		t.Fatalf("after re-Join, multicast reached %v, want all 5 receivers", got)
	}
}

// TestLinkProfilesBeyond64Marks exercises the growable mark namespace end to
// end: with more than 64 marked links, a profile installed on a high-bit
// link must still gate deliveries whose path crosses it.
func TestLinkProfilesBeyond64Marks(t *testing.T) {
	eng, n := newNet(t, topology.FlatLAN(70))
	sw := devID(t, n.top, "sw0")
	// Burn 69 mark bits on healthy links, then install a drop-everything
	// profile on host 69's uplink — its bit index is 69, past the old cap.
	for i := 0; i < 69; i++ {
		n.SetLinkProfile(sw, devID(t, n.top, fmtNode(i)), LinkProfile{})
	}
	bit := n.top.MarkLink(sw, devID(t, n.top, fmtNode(69)))
	if bit != 69 {
		t.Fatalf("mark bit = %d, want 69", bit)
	}
	n.installProfile(bit, LinkProfile{Loss: 0.999999999})
	recv := map[topology.HostID]int{}
	for _, h := range []topology.HostID{1, 69} {
		h := h
		n.Endpoint(h).SetHandler(func(pkt Packet) { recv[h]++ })
	}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		n.Endpoint(0).Unicast(1, []byte("x"))
		n.Endpoint(0).Unicast(69, []byte("x"))
	}
	eng.RunAll()
	if recv[1] != rounds {
		t.Fatalf("unaffected path lost packets: recv[1] = %d, want %d", recv[1], rounds)
	}
	if recv[69] > 1 {
		t.Fatalf("high-bit profile not applied: recv[69] = %d, want ~0", recv[69])
	}
}

func fmtNode(i int) string { return "node" + string([]byte{'0' + byte(i/100), '0' + byte(i/10%10), '0' + byte(i%10)}) }
