package netsim

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Partitioned (parsim) mode. The network is split along the topology's LP
// partition: every endpoint sends and receives on its LP's engine, and the
// only cross-LP communication is timestamped outMsg records parked in
// per-sender outboxes, drained by the parsim coordinator at window
// boundaries. Within a lookahead window no worker goroutine touches another
// LP's mutable state; everything a sender reads about a remote endpoint
// (gray lag, published subscriptions) is frozen between boundaries. See
// docs/PARSIM.md for the full ownership table and the determinism contract.

// outMsg is one cross-LP delivery, fully drawn at send time on the sender's
// engine (jitter, duplication, gray lag) with receiver-side draws (loss,
// byte faults) deferred to the destination engine at Fire time — the same
// split the serial network uses, so -lps 1 and -lps K consume RNG streams
// identically.
type outMsg struct {
	at   time.Duration // absolute arrival time (pre-clamp)
	dst  *Endpoint
	pkt  Packet
	loss float64
	fl   faults
	gray bool // count GrayDelayed at the receiver on arrival
}

// lpNet is the partitioned-mode state hanging off Network.lps.
type lpNet struct {
	lpOf []int         // host -> LP
	engs []*sim.Engine // LP -> engine

	// out[src][b] holds messages sent by LP src to any LP owned by worker
	// b (dstLP % buckets == b). Only src's worker appends during a window;
	// only worker b drains at the boundary. Bucketing by destination worker
	// means each worker drains exactly the messages it will schedule,
	// touching no other worker's engines.
	out     [][][]outMsg
	buckets int

	pools []*delivery          // per-LP delivery free lists
	fans  []map[fanKey]*fanout // per-LP fan-out caches
	wan   []uint64             // per-LP WAN byte counters

	// subEpoch[lp] invalidates lp's own fan-outs on local Join/Leave;
	// pubEpoch invalidates everyone's when any LP republishes snapshots.
	// pubEpoch only changes between windows (deterministically: it is
	// driven by dirty-endpoint counts, which the event streams determine).
	subEpoch []uint64
	pubEpoch uint64
	dirty    [][]*Endpoint // per-LP endpoints with unpublished sub changes
}

// EnablePartition switches the network into partitioned mode: host h lives
// on engs[lpOf[h]], and cross-LP sends queue into buckets drained by
// `buckets` workers (worker b owns LPs with lp%buckets == b). Must be
// called before any traffic; the serial engine passed to New is no longer
// used for scheduling afterwards.
func (n *Network) EnablePartition(lpOf []int, engs []*sim.Engine, buckets int) {
	if len(lpOf) != len(n.eps) {
		panic(fmt.Sprintf("netsim: partition over %d hosts, network has %d", len(lpOf), len(n.eps)))
	}
	if buckets < 1 {
		panic(fmt.Sprintf("netsim: %d exchange buckets", buckets))
	}
	p := len(engs)
	l := &lpNet{
		lpOf:     lpOf,
		engs:     engs,
		buckets:  buckets,
		out:      make([][][]outMsg, p),
		pools:    make([]*delivery, p),
		fans:     make([]map[fanKey]*fanout, p),
		wan:      make([]uint64, p),
		subEpoch: make([]uint64, p),
		dirty:    make([][]*Endpoint, p),
	}
	for i := range l.out {
		l.out[i] = make([][]outMsg, buckets)
		l.fans[i] = make(map[fanKey]*fanout)
	}
	for h, ep := range n.eps {
		lp := lpOf[h]
		ep.lp = int32(lp)
		ep.eng = engs[lp]
		ep.pubSubs = make(map[ChannelID]bool)
	}
	n.lps = l
}

// enqueue parks one cross-LP message in the sender's outbox. Called only by
// the owner of src during its window.
func (l *lpNet) enqueue(src, dst int32, m outMsg) {
	b := int(dst) % l.buckets
	l.out[src][b] = append(l.out[src][b], m)
}

// DrainCross schedules every parked message bound for worker `bucket`'s LPs
// onto its destination engine, in (source LP ascending, send order) order —
// an order independent of the worker count, which is what makes engine
// sequence stamps, and therefore simultaneous-timestamp tie-breaks,
// LP-count-invariant. Arrivals that jitter or gray lag pushed below the
// boundary are clamped up to winEnd (deterministically: the clamp depends
// only on the message and the boundary time). Called by worker `bucket`
// between windows.
func (n *Network) DrainCross(bucket int, winEnd time.Duration) {
	l := n.lps
	for src := range l.out {
		msgs := l.out[src][bucket]
		if len(msgs) == 0 {
			continue
		}
		for i := range msgs {
			m := &msgs[i]
			at := m.at
			if at < winEnd {
				at = winEnd
			}
			eng := l.engs[m.dst.lp]
			d := n.newDelivery(eng, m.dst.lp)
			d.dst, d.pkt, d.loss, d.fl, d.gray = m.dst, m.pkt, m.loss, m.fl, m.gray
			eng.ScheduleCall(at-eng.Now(), d)
		}
		clear(msgs) // drop payload references
		l.out[src][bucket] = msgs[:0]
	}
}

// PublishSubs publishes pending subscription snapshots for one LP and
// reports how many endpoints changed. Called by the LP's worker (or the
// coordinator) between windows.
func (n *Network) PublishSubs(lp int) int {
	l := n.lps
	d := l.dirty[lp]
	for _, ep := range d {
		clear(ep.pubSubs)
		for ch := range ep.subs {
			ep.pubSubs[ch] = true
		}
		ep.subDirty = false
	}
	count := len(d)
	l.dirty[lp] = d[:0]
	return count
}

// PublishAllSubs publishes every LP's pending subscription changes and
// bumps the published epoch if there were any. The coordinator calls it
// single-threaded at run start and after boundary actions.
func (n *Network) PublishAllSubs() {
	l := n.lps
	total := 0
	for lp := range l.dirty {
		total += n.PublishSubs(lp)
	}
	if total > 0 {
		l.pubEpoch++
	}
}

// BumpPubEpoch invalidates every LP's fan-out caches; the coordinator calls
// it at a boundary where PublishSubs reported changes.
func (n *Network) BumpPubEpoch() { n.lps.pubEpoch++ }

// PendingCross reports whether any cross-LP message is parked for worker
// `bucket` (used by the coordinator to find the next boundary with work).
func (n *Network) PendingCross(bucket int) bool {
	l := n.lps
	for src := range l.out {
		if len(l.out[src][bucket]) > 0 {
			return true
		}
	}
	return false
}
