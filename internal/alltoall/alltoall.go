package alltoall

import (
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parametrizes an all-to-all node.
type Config struct {
	// Channel is the single cluster-wide multicast channel.
	Channel netsim.ChannelID
	// TTL must cover the whole cluster (at least the topology diameter).
	TTL int
	// HeartbeatInterval is the multicast period (1 Hz in the paper).
	HeartbeatInterval time.Duration
	// MaxLoss is the consecutive losses tolerated before declaring a node
	// dead (5 in the paper).
	MaxLoss int
	// HeartbeatPad pads heartbeats to emulate configured packet sizes
	// (the paper's Figure 2 uses 1024-byte heartbeats).
	HeartbeatPad int
}

// DefaultConfig mirrors the paper's experiment settings.
func DefaultConfig() Config {
	return Config{
		Channel:           1,
		TTL:               8,
		HeartbeatInterval: time.Second,
		MaxLoss:           5,
	}
}

// DeadAfter is the silence duration after which a node is declared dead.
func (c Config) DeadAfter() time.Duration {
	return time.Duration(c.MaxLoss) * c.HeartbeatInterval
}

// Node is one cluster node running the all-to-all membership scheme.
type Node struct {
	cfg     Config
	eng     *sim.Engine
	ep      netsim.Transport
	id      membership.NodeID
	dir     *membership.Directory
	info    membership.MemberInfo
	hb      *sim.Ticker
	tracker *sim.Ticker
	running bool
	// hbSeen is the highest (incarnation, beat) accepted per sender;
	// heartbeats that fail to advance it are replays or stale deliveries and
	// must not refresh liveness. Survives member expiry so a dead node's
	// replayed traffic cannot resurrect it.
	hbSeen map[membership.NodeID]hbMark
}

// hbMark is the freshness high-water mark of one sender's heartbeats.
type hbMark struct {
	inc  uint32
	beat uint64
}

// NewNode creates a node bound to an endpoint.
func NewNode(cfg Config, ep netsim.Transport) *Node {
	id := membership.NodeID(ep.ID())
	return &Node{
		cfg:    cfg,
		ep:     ep,
		id:     id,
		dir:    membership.NewDirectory(id),
		info:   membership.MemberInfo{Node: id},
		hbSeen: make(map[membership.NodeID]hbMark),
	}
}

// ID returns the node identity.
func (n *Node) ID() membership.NodeID { return n.id }

// Directory returns the node's yellow-page directory.
func (n *Node) Directory() *membership.Directory { return n.dir }

// Running reports whether the node is started.
func (n *Node) Running() bool { return n.running }

// SetInfo replaces the published services/attributes.
func (n *Node) SetInfo(info membership.MemberInfo) {
	info.Node = n.id
	inc, beat := n.info.Incarnation, n.info.Beat
	n.info = info.Clone()
	n.info.Incarnation, n.info.Beat = inc, beat
}

// UpdateValue publishes a key/value pair.
func (n *Node) UpdateValue(key, value string) {
	n.info.SetAttr(key, value)
	n.info.Version++
	if n.running {
		n.dir.Upsert(n.info.Clone(), membership.OriginSelf, 0, membership.NoNode, n.eng.Now())
	}
}

// RegisterService publishes a service hosted by this node.
func (n *Node) RegisterService(name, partitions string, params ...membership.KV) error {
	parts, err := membership.ParsePartitions(partitions)
	if err != nil {
		return err
	}
	n.info.Services = append(n.info.Services, membership.ServiceDecl{
		Name: name, Partitions: parts, Params: append([]membership.KV(nil), params...),
	})
	n.info.Version++
	if n.running {
		n.dir.Upsert(n.info.Clone(), membership.OriginSelf, 0, membership.NoNode, n.eng.Now())
	}
	return nil
}

// Receive handles a membership packet delivered by an outer endpoint mux
// (e.g. a service runtime that claimed the endpoint before Start).
func (n *Node) Receive(pkt netsim.Packet) { n.receive(pkt) }

// Start joins the cluster channel and begins heartbeating.
func (n *Node) Start(eng *sim.Engine) {
	if n.running {
		return
	}
	n.eng = eng
	n.running = true
	n.info.Incarnation++
	n.dir.Upsert(n.info.Clone(), membership.OriginSelf, 0, membership.NoNode, eng.Now())
	if !n.ep.HasHandler() {
		n.ep.SetHandler(n.receive)
	}
	n.ep.SetUp(true)
	n.ep.Join(n.cfg.Channel)
	jitter := time.Duration(eng.Rand().Int63n(int64(n.cfg.HeartbeatInterval)))
	n.hb = sim.NewTicker(eng, jitter, n.cfg.HeartbeatInterval, n.sendHeartbeat)
	n.tracker = sim.NewTicker(eng, n.cfg.HeartbeatInterval/2, n.cfg.HeartbeatInterval/2, n.track)
}

// Stop kills the daemon.
func (n *Node) Stop() {
	if !n.running {
		return
	}
	n.running = false
	n.hb.Stop()
	n.tracker.Stop()
	n.ep.Leave(n.cfg.Channel)
	n.ep.SetUp(false)
}

func (n *Node) sendHeartbeat() {
	if !n.running {
		return
	}
	n.info.Beat++
	hb := &wire.Heartbeat{
		Info:   n.info.Clone(),
		Backup: membership.NoNode,
		Seq:    n.info.Beat,
		Pad:    uint16(n.cfg.HeartbeatPad),
	}
	n.ep.Multicast(n.cfg.Channel, n.cfg.TTL, wire.Encode(hb))
}

func (n *Node) receive(pkt netsim.Packet) {
	if !n.running {
		return
	}
	msg, err := pkt.Decode()
	if err != nil {
		n.ep.NoteReject()
		return
	}
	hb, ok := msg.(*wire.Heartbeat)
	if !ok || hb.Info.Node == n.id {
		return
	}
	if hb.Info.Node < 0 {
		n.ep.NoteReject()
		return
	}
	// Freshness guard: only a heartbeat that advances the sender's
	// (incarnation, beat) counts as evidence of life. Replayed or
	// stale-delivered copies are counted and dropped — they may delay a
	// refresh (liveness) but can never fake one (safety).
	mark, marked := n.hbSeen[hb.Info.Node]
	if marked && hb.Info.Incarnation <= mark.inc &&
		(hb.Info.Incarnation < mark.inc || hb.Info.Beat <= mark.beat) {
		n.ep.NoteReject()
		return
	}
	n.hbSeen[hb.Info.Node] = hbMark{inc: hb.Info.Incarnation, beat: hb.Info.Beat}
	n.dir.Upsert(hb.Info, membership.OriginDirect, 0, membership.NoNode, n.eng.Now())
}

func (n *Node) track() {
	if !n.running {
		return
	}
	now := n.eng.Now()
	dead, _ := n.dir.Expired(now, func(*membership.Entry) time.Duration { return n.cfg.DeadAfter() })
	for _, id := range dead {
		n.dir.Remove(id, now)
	}
}
