// Package alltoall implements the flat broadcast membership scheme the
// paper compares against (#7 in DESIGN.md's system inventory).
//
// Every node multicasts a full heartbeat to the whole cluster on one
// maximum-TTL channel every Interval, and marks a peer dead after
// MissedBeats silent intervals (Config.DeadAfter). Detection is fast and
// the implementation is trivial, but per-node receive bandwidth grows
// linearly with cluster size — the scaling failure quantified in Figures
// 11-13 and Section 4's analytic model.
//
// Node mirrors the surface of core.Node (ID, Directory, Start/Stop,
// SetInfo, RegisterService, UpdateValue) so the experiment harness can
// drive all three schemes through one Instance interface, and satisfies
// service.Member so the service and traffic layers run over it too.
package alltoall
