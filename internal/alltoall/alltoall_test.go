package alltoall

import (
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newCluster(top *topology.Topology) (*sim.Engine, *netsim.Network, []*Node) {
	eng := sim.NewEngine(11)
	net := netsim.New(eng, top)
	cfg := DefaultConfig()
	cfg.TTL = top.Diameter()
	var nodes []*Node
	for h := 0; h < top.NumHosts(); h++ {
		nodes = append(nodes, NewNode(cfg, net.Endpoint(topology.HostID(h))))
	}
	return eng, net, nodes
}

func TestConvergence(t *testing.T) {
	eng, _, nodes := newCluster(topology.Clustered(3, 5))
	for _, n := range nodes {
		n.Start(eng)
	}
	eng.Run(5 * time.Second)
	for _, n := range nodes {
		if n.Directory().Len() != len(nodes) {
			t.Fatalf("node %v sees %d members, want %d", n.ID(), n.Directory().Len(), len(nodes))
		}
	}
}

func TestFailureDetectionTiming(t *testing.T) {
	eng, _, nodes := newCluster(topology.FlatLAN(10))
	cfg := DefaultConfig()
	for _, n := range nodes {
		n.Start(eng)
	}
	eng.Run(5 * time.Second)
	killAt := eng.Now()
	nodes[7].Stop()
	detect := map[membership.NodeID]time.Duration{}
	for _, n := range nodes {
		if n == nodes[7] {
			continue
		}
		n := n
		n.Directory().SetObserver(func(e membership.Event) {
			if e.Type == membership.EventLeave && e.Node == 7 {
				detect[n.ID()] = e.Time - killAt
			}
		})
	}
	eng.Run(eng.Now() + 15*time.Second)
	if len(detect) != 9 {
		t.Fatalf("%d nodes detected, want 9", len(detect))
	}
	for id, d := range detect {
		if d < cfg.DeadAfter()-cfg.HeartbeatInterval || d > cfg.DeadAfter()+2*cfg.HeartbeatInterval {
			t.Errorf("node %v detected at %v, want about %v", id, d, cfg.DeadAfter())
		}
	}
}

func TestQuadraticReceiveRate(t *testing.T) {
	run := func(n int) float64 {
		eng, net, nodes := newCluster(topology.FlatLAN(n))
		for _, nd := range nodes {
			nd.Start(eng)
		}
		eng.Run(5 * time.Second)
		net.ResetStats()
		eng.Run(eng.Now() + 10*time.Second)
		return float64(net.TotalStats().PktsRecv)
	}
	small, big := run(5), run(10)
	// Aggregate receive count ~ N*(N-1): 10 nodes should see ~4.5x the
	// packets of 5 nodes.
	ratio := big / small
	if ratio < 3.5 || ratio > 5.5 {
		t.Fatalf("receive ratio = %.2f, want about 4.5 (quadratic)", ratio)
	}
}

func TestRejoinAfterStop(t *testing.T) {
	eng, _, nodes := newCluster(topology.FlatLAN(4))
	for _, n := range nodes {
		n.Start(eng)
	}
	eng.Run(5 * time.Second)
	nodes[2].Stop()
	eng.Run(eng.Now() + 10*time.Second)
	for i, n := range nodes {
		if i == 2 {
			continue
		}
		if n.Directory().Has(2) {
			t.Fatalf("node %v still lists stopped node", n.ID())
		}
	}
	nodes[2].Start(eng)
	eng.Run(eng.Now() + 5*time.Second)
	for _, n := range nodes {
		if n.Directory().Len() != 4 {
			t.Fatalf("node %v sees %d after rejoin, want 4", n.ID(), n.Directory().Len())
		}
	}
}

func TestServiceInfoInHeartbeats(t *testing.T) {
	eng, _, nodes := newCluster(topology.FlatLAN(3))
	if err := nodes[1].RegisterService("Cache", "0-2"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n.Start(eng)
	}
	eng.Run(5 * time.Second)
	got, err := nodes[0].Directory().Lookup("Cache", "1")
	if err != nil || len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	nodes[1].UpdateValue("load", "3")
	eng.Run(eng.Now() + 3*time.Second)
	e := nodes[2].Directory().Get(1)
	if v, _ := e.Info.Attr("load"); v != "3" {
		t.Fatalf("attr did not propagate: %q", v)
	}
}
