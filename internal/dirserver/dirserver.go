package dirserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/membership"
	"repro/internal/wire"
)

// maxFrame bounds one length-prefixed IPC frame.
const maxFrame = 16 << 20

// Server publishes directory snapshots and answers lookup queries.
type Server struct {
	ln net.Listener

	mu   sync.RWMutex
	snap *membership.Directory

	closed chan struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on a loopback TCP port ("the shared memory key" of
// this implementation is the returned address).
func Serve() (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dirserver: listen: %w", err)
	}
	s := &Server{ln: ln, snap: membership.NewDirectory(membership.NoNode), closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's address for clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	s.ln.Close()
	s.wg.Wait()
}

// Publish installs a new snapshot of the daemon's directory. The caller
// passes cloned infos (membership.Directory.Snapshot already deep-copies);
// the server indexes them for regex lookups.
func (s *Server) Publish(infos []membership.MemberInfo) {
	d := membership.NewDirectory(membership.NoNode)
	for _, info := range infos {
		d.Upsert(info, membership.OriginRelayed, 0, membership.NoNode, 0)
	}
	s.mu.Lock()
	s.snap = d
	s.mu.Unlock()
}

// Members returns the node count of the current snapshot (for tests).
func (s *Server) Members() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Len()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			writeFrame(conn, wire.Encode(&wire.DirMatches{Error: "bad query: " + err.Error()}))
			continue
		}
		q, ok := msg.(*wire.DirQuery)
		if !ok {
			writeFrame(conn, wire.Encode(&wire.DirMatches{Error: "unexpected packet"}))
			continue
		}
		s.mu.RLock()
		snap := s.snap
		s.mu.RUnlock()
		matches, err := snap.Lookup(q.Service, q.Partition)
		reply := &wire.DirMatches{OK: err == nil}
		if err != nil {
			reply.Error = err.Error()
		}
		for _, m := range matches {
			reply.Matches = append(reply.Matches, wire.DirMatch{
				Node:       m.Node,
				Service:    m.Service,
				Partitions: m.Partitions,
				Params:     m.Params,
				Attrs:      m.Attrs,
			})
		}
		if writeFrame(conn, wire.Encode(reply)) != nil {
			return
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("dirserver: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is the membership client library endpoint: it connects to a
// daemon's directory server and issues lookup_service queries. Safe for
// sequential use; wrap with your own mutex for concurrent callers.
type Client struct {
	conn net.Conn
}

// DialClient connects to a daemon's directory server.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dirserver: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ErrQuery wraps server-side lookup failures (e.g. a bad regex).
var ErrQuery = errors.New("dirserver: query rejected")

// Lookup performs one lookup_service call against the daemon.
func (c *Client) Lookup(servicePattern, partitionSpec string) ([]wire.DirMatch, error) {
	req := wire.Encode(&wire.DirQuery{Service: servicePattern, Partition: partitionSpec})
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return nil, err
	}
	reply, ok := msg.(*wire.DirMatches)
	if !ok {
		return nil, fmt.Errorf("dirserver: unexpected reply %T", msg)
	}
	if !reply.OK {
		return nil, fmt.Errorf("%w: %s", ErrQuery, reply.Error)
	}
	return reply.Matches, nil
}
