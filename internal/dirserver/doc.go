// Package dirserver implements the paper's §5 client library split: a
// per-host directory server process that answers lookup_service queries
// from application processes over local IPC (#18 in DESIGN.md's system
// inventory).
//
// In the paper, the membership daemon keeps the directory and application
// processes on the same host query it through a small client library,
// so applications need not participate in the protocol. Here Server
// listens on a loopback TCP socket, is fed the current directory via
// Publish, and serves wire.DirQuery/DirReply frames (length-prefixed,
// bounded by maxFrame). Client is the application-side library: DialClient
// connects and Lookup runs the regex-over-service-name plus partition-spec
// query remotely, returning wire.DirMatch rows.
//
// This package uses real sockets (like internal/realnet) and therefore
// runs on the OS scheduler, not the simulation engine; its tests are the
// only tier-1 tests that touch the loopback interface.
package dirserver
