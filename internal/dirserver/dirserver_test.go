package dirserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func info(n membership.NodeID, svc string, parts ...int32) membership.MemberInfo {
	return membership.MemberInfo{
		Node:     n,
		Services: []membership.ServiceDecl{{Name: svc, Partitions: parts}},
	}
}

func TestServeAndLookup(t *testing.T) {
	s, err := Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Publish([]membership.MemberInfo{
		info(1, "Cache", 0, 1),
		info(2, "Cache", 2),
		info(3, "HTTP", 0),
	})
	c, err := DialClient(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Lookup("Cache", "1-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Node != 1 || got[1].Node != 2 {
		t.Fatalf("matches = %+v", got)
	}
	got, err = c.Lookup(".*", "*")
	if err != nil || len(got) != 3 {
		t.Fatalf("wildcard = %+v, %v", got, err)
	}
	// Bad regex surfaces as a query error, connection stays usable.
	if _, err := c.Lookup("(", "*"); !errors.Is(err, ErrQuery) {
		t.Fatalf("bad regex error = %v", err)
	}
	if _, err := c.Lookup("HTTP", "*"); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestRepublishChangesResults(t *testing.T) {
	s, _ := Serve()
	defer s.Close()
	s.Publish([]membership.MemberInfo{info(1, "S", 0)})
	c, _ := DialClient(s.Addr())
	defer c.Close()
	got, _ := c.Lookup("S", "*")
	if len(got) != 1 {
		t.Fatalf("initial = %+v", got)
	}
	s.Publish([]membership.MemberInfo{info(2, "S", 0), info(3, "S", 1)})
	got, _ = c.Lookup("S", "*")
	if len(got) != 2 || got[0].Node != 2 {
		t.Fatalf("after republish = %+v", got)
	}
	if s.Members() != 2 {
		t.Fatalf("Members = %d", s.Members())
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := Serve()
	defer s.Close()
	var infos []membership.MemberInfo
	for i := 0; i < 20; i++ {
		infos = append(infos, info(membership.NodeID(i), fmt.Sprintf("S%d", i%4), int32(i)))
	}
	s.Publish(infos)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialClient(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				got, err := c.Lookup("S1", "*")
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 5 {
					errs <- fmt.Errorf("got %d matches, want 5", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDaemonIntegration wires a simulated membership daemon to the
// directory server: every directory change republishes, and an external
// client process (this test goroutine) sees the cluster through the
// socket — the full §5 architecture.
func TestDaemonIntegration(t *testing.T) {
	top := topology.Clustered(2, 3)
	eng := sim.NewEngine(5)
	net := netsim.New(eng, top)
	cfg := core.DefaultConfig()
	cfg.MaxTTL = top.Diameter()
	var nodes []*core.Node
	for h := 0; h < 6; h++ {
		nodes = append(nodes, core.NewNode(cfg, net.Endpoint(topology.HostID(h))))
	}
	nodes[5].RegisterService("Retriever", "0-2")

	s, err := Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The daemon on node 0 republishes on every view change (debounced in
	// a real deployment; immediate is fine here).
	daemon := nodes[0]
	daemon.Directory().SetObserver(func(membership.Event) {
		s.Publish(daemon.Directory().Snapshot())
	})

	for _, n := range nodes {
		n.Start(eng)
	}
	eng.Run(15 * time.Second)
	s.Publish(daemon.Directory().Snapshot()) // final state

	c, err := DialClient(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Lookup("Retriever", "1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != 5 {
		t.Fatalf("client sees %+v", got)
	}

	// Kill the provider; after detection the client's view updates.
	nodes[5].Stop()
	eng.Run(eng.Now() + 30*time.Second)
	got, err = c.Lookup("Retriever", "1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("dead provider still served to IPC clients: %+v", got)
	}
}

func TestClientDialFailure(t *testing.T) {
	if _, err := DialClient("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
