package tamp

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// MService is the membership service daemon on one node — the public
// mirror of the paper's MService class (Figure 8):
//
//	class MService {
//	    MService(const char *configuration);
//	    void control(int cmd, void *arg);
//	    int run(void);
//	    int register_service(const char *name, const char *partition);
//	    int update_value(const char *key, const void *value, int size);
//	    int delete_value(const char *key);
//	};
//
// The constructor takes the paper's configuration file format (*SYSTEM /
// *SERVICE sections); Run starts the daemon's announcer, receiver, status
// tracker, informer and contender duties (all as events on the simulated
// clock); services declared in the configuration are registered before the
// first heartbeat.
type MService struct {
	s    *Sim
	node *core.Node
	host topology.HostID
}

// NewMService creates a membership daemon on host h of the simulation,
// configured from configText (the paper's file format; pass "" for
// defaults). The *SYSTEM keys MAX_TTL, MCAST_FREQ, MAX_LOSS and MCAST_PORT
// (as the base channel) are honoured; *SERVICE blocks are registered.
func NewMService(s *Sim, h HostID, configText string) (*MService, error) {
	cfg := core.DefaultConfig()
	cfg.MaxTTL = s.top.Diameter()
	if cfg.MaxTTL < 1 {
		cfg.MaxTTL = 1
	}
	var file *config.File
	if configText != "" {
		var err error
		file, err = config.ParseString(configText)
		if err != nil {
			return nil, err
		}
		if v, err := file.SystemInt("MAX_TTL", cfg.MaxTTL); err != nil {
			return nil, err
		} else {
			cfg.MaxTTL = v
		}
		if v, err := file.SystemInt("MAX_LOSS", cfg.MaxLoss); err != nil {
			return nil, err
		} else {
			cfg.MaxLoss = v
		}
		if v, err := file.SystemInt("MCAST_PORT", int(cfg.BaseChannel)); err != nil {
			return nil, err
		} else {
			cfg.BaseChannel = netsim.ChannelID(v)
		}
		iv, err := file.MulticastFrequency()
		if err != nil {
			return nil, err
		}
		cfg.HeartbeatInterval = iv
	}
	m := &MService{s: s, node: core.NewNode(cfg, s.net.Endpoint(h)), host: h}
	// Keep a bounded change history so clients can reconcile after gaps.
	m.node.Directory().EnableHistory(256)
	if file != nil {
		for _, svc := range file.Services {
			if err := m.RegisterService(svc.Name, svc.Partition, svc.Params...); err != nil {
				return nil, fmt.Errorf("tamp: registering %q: %w", svc.Name, err)
			}
		}
	}
	return m, nil
}

// ID returns the daemon's node identity.
func (m *MService) ID() NodeID { return m.node.ID() }

// Run starts the daemon (the paper's run()).
func (m *MService) Run() { m.node.Start(m.s.eng) }

// Stop kills the daemon, as the paper's experiments do to emulate a node
// failure.
func (m *MService) Stop() { m.node.Stop() }

// Leave departs gracefully: the node announces its own departure, so the
// cluster converges immediately instead of waiting out the failure
// detection window. Falls back to detection if the announcement is lost.
func (m *MService) Leave() { m.node.Leave() }

// Running reports whether the daemon is live.
func (m *MService) Running() bool { return m.node.Running() }

// RegisterService publishes a service with a partition list in the paper's
// spec syntax ("1-3", "0,2"), plus service-specific parameters.
func (m *MService) RegisterService(name, partitions string, params ...KV) error {
	return m.node.RegisterService(name, partitions, params...)
}

// UpdateValue publishes or replaces one attribute (update_value).
func (m *MService) UpdateValue(key, value string) { m.node.UpdateValue(key, value) }

// DeleteValue removes one attribute (delete_value); reports presence.
func (m *MService) DeleteValue(key string) bool { return m.node.DeleteValue(key) }

// IsLeader reports whether this node currently leads its membership group
// at the given tree level.
func (m *MService) IsLeader(level int) bool { return m.node.IsLeader(level) }

// ProtocolStats are the daemon's protocol counters (see core.Stats).
type ProtocolStats = core.Stats

// Stats returns the daemon's protocol counters since the last Run.
func (m *MService) Stats() ProtocolStats { return m.node.Stats() }

// Client returns a client handle to this node's yellow-page directory (the
// paper's MClient, which attached over shared memory; here the directory
// handle plays that role).
func (m *MService) Client() *MClient { return &MClient{dir: m.node.Directory()} }

// ServeDirectory starts a local directory server for this daemon — the §5
// daemon/client split: separate client processes connect to the returned
// address (the analogue of the paper's SHM_KEY) and issue lookup_service
// queries over a socket. The server republishes on every view change.
// Close the returned server when done.
func (m *MService) ServeDirectory() (*DirectoryServer, error) {
	s, err := dirserver.Serve()
	if err != nil {
		return nil, err
	}
	m.node.Directory().SetObserver(func(membership.Event) {
		s.Publish(m.node.Directory().Snapshot())
	})
	s.Publish(m.node.Directory().Snapshot())
	return s, nil
}

// DirectoryServer serves a daemon's yellow page to external clients.
type DirectoryServer = dirserver.Server

// DirectoryClient is the client side of the §5 split.
type DirectoryClient = dirserver.Client

// DialDirectory connects a client to a daemon's directory server.
func DialDirectory(addr string) (*DirectoryClient, error) {
	return dirserver.DialClient(addr)
}

// MClient queries a node's local yellow-page directory — the public mirror
// of the paper's MClient class (Figure 9).
type MClient struct {
	dir *membership.Directory
}

// LookupService finds the machines hosting a service: servicePattern is an
// anchored regular expression over service names and partitionSpec is "*"
// or a partition list ("1-3"), exactly as in the paper's
// lookup_service(service, partition, &machines).
func (c *MClient) LookupService(servicePattern, partitionSpec string) (MachineList, error) {
	matches, err := c.dir.Lookup(servicePattern, partitionSpec)
	if err != nil {
		return nil, err
	}
	out := make(MachineList, 0, len(matches))
	for _, m := range matches {
		out = append(out, Machine{
			Node:       m.Node,
			Service:    m.Service,
			Partitions: m.Partitions,
			Params:     m.Params,
			Attrs:      m.Attrs,
		})
	}
	return out, nil
}

// Members returns the node IDs currently believed alive.
func (c *MClient) Members() []NodeID { return c.dir.View() }

// Len returns the number of known-alive nodes.
func (c *MClient) Len() int { return c.dir.Len() }

// ChangeEvent is one membership change notification.
type ChangeEvent = membership.Event

// ChangesSince returns the retained membership change events at or after
// t (oldest first) and whether the history is complete back to t; when
// incomplete, the caller should resynchronize from Members instead of
// applying the delta.
func (c *MClient) ChangesSince(t time.Duration) ([]ChangeEvent, bool) {
	return c.dir.ChangesSince(t)
}

// Cluster bundles a simulation with one MService per host — the shape every
// example starts from.
type Cluster struct {
	*Sim
	Services []*MService
}

// NewCluster builds a simulated cluster with a default-configured MService
// on every host.
func NewCluster(top *Topology) *Cluster {
	return NewClusterSeed(top, 42)
}

// NewClusterSeed is NewCluster with an explicit RNG seed.
func NewClusterSeed(top *Topology, seed int64) *Cluster {
	s := NewSim(top, seed)
	c := &Cluster{Sim: s}
	for h := 0; h < top.NumHosts(); h++ {
		m, err := NewMService(s, HostID(h), "")
		if err != nil {
			panic(err) // defaults cannot fail
		}
		c.Services = append(c.Services, m)
	}
	return c
}

// MustService returns host h's membership daemon.
func (c *Cluster) MustService(h HostID) *MService { return c.Services[h] }

// StartAll runs every daemon.
func (c *Cluster) StartAll() {
	for _, m := range c.Services {
		m.Run()
	}
}

// Converged reports whether every running daemon's view equals the set of
// running daemons.
func (c *Cluster) Converged() bool {
	var want []NodeID
	for _, m := range c.Services {
		if m.Running() {
			want = append(want, m.ID())
		}
	}
	for _, m := range c.Services {
		if !m.Running() {
			continue
		}
		if !membership.ViewEqual(m.Client().Members(), want) {
			return false
		}
	}
	return true
}

// WaitConverged runs the simulation until convergence or the deadline
// elapses; it reports success.
func (c *Cluster) WaitConverged(step, deadline time.Duration) bool {
	limit := c.Now() + deadline
	for c.Now() < limit {
		if c.Converged() {
			return true
		}
		c.Run(step)
	}
	return c.Converged()
}
