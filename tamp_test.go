package tamp

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cl := NewCluster(Clustered(3, 5))
	if err := cl.MustService(7).RegisterService("Cache", "0-3", KV{Key: "Port", Value: "9000"}); err != nil {
		t.Fatal(err)
	}
	cl.StartAll()
	if !cl.WaitConverged(time.Second, 30*time.Second) {
		t.Fatal("cluster never converged")
	}
	machines, err := cl.MustService(0).Client().LookupService("Cache", "2")
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 1 || machines[0].Node != 7 {
		t.Fatalf("lookup = %+v", machines)
	}
	if machines[0].Params[0].Value != "9000" {
		t.Fatalf("params = %+v", machines[0].Params)
	}
	if got := machines.Nodes(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Nodes() = %v", got)
	}
}

func TestMServiceFromConfigFile(t *testing.T) {
	system := `
*SYSTEM
MAX_TTL = 2
MCAST_PORT = 50
MCAST_FREQ = 2
MAX_LOSS = 3
`
	withServices := system + `
*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
[Cache]
    PARTITION = 1-2
`
	s := NewSim(Clustered(2, 3), 7)
	var services []*MService
	for h := 0; h < 6; h++ {
		text := system
		if h == 4 {
			text = withServices
		}
		m, err := NewMService(s, HostID(h), text)
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		services = append(services, m)
	}
	s.Run(20 * time.Second)
	got, err := services[0].Client().LookupService("HTTP|Cache", "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("lookup = %+v", got)
	}
	if got[0].Service != "Cache" || got[1].Service != "HTTP" {
		t.Fatalf("services = %v %v", got[0].Service, got[1].Service)
	}
}

func TestMServiceBadConfig(t *testing.T) {
	s := NewSim(FlatLAN(2), 1)
	for _, bad := range []string{
		"*WAT\n",
		"*SYSTEM\nMAX_TTL = x\n",
		"*SYSTEM\nMCAST_FREQ = 0\n",
		"*SERVICE\n[X]\nPARTITION = nope\n",
	} {
		if _, err := NewMService(s, 0, bad); err == nil {
			t.Errorf("config %q accepted", bad)
		}
	}
}

func TestUpdateAndDeleteValue(t *testing.T) {
	cl := NewCluster(FlatLAN(4))
	cl.StartAll()
	cl.Run(10 * time.Second)
	cl.MustService(2).UpdateValue("weight", "3")
	cl.Run(5 * time.Second)
	got, _ := cl.MustService(0).Client().LookupService(".*", "*")
	_ = got
	ms, _ := cl.MustService(0).Client().LookupService(".*", "*")
	_ = ms
	// Attr visible cluster-wide via any lookup of node 2's entries is
	// checked at the directory level in internal tests; here check the
	// client surface end to end using a service.
	cl.MustService(2).RegisterService("S", "0")
	cl.Run(5 * time.Second)
	found, err := cl.MustService(1).Client().LookupService("S", "*")
	if err != nil || len(found) != 1 {
		t.Fatalf("lookup: %v %v", found, err)
	}
	var weight string
	for _, kv := range found[0].Attrs {
		if kv.Key == "weight" {
			weight = kv.Value
		}
	}
	if weight != "3" {
		t.Fatalf("weight attr = %q", weight)
	}
	if !cl.MustService(2).DeleteValue("weight") {
		t.Fatal("DeleteValue reported absent")
	}
	cl.Run(5 * time.Second)
	found, _ = cl.MustService(1).Client().LookupService("S", "*")
	for _, kv := range found[0].Attrs {
		if kv.Key == "weight" {
			t.Fatal("deleted attr still visible")
		}
	}
}

func TestFailureVisibleThroughClient(t *testing.T) {
	cl := NewCluster(Clustered(2, 4))
	cl.StartAll()
	cl.Run(15 * time.Second)
	if n := cl.MustService(0).Client().Len(); n != 8 {
		t.Fatalf("members = %d, want 8", n)
	}
	cl.MustService(5).Stop()
	cl.Run(30 * time.Second)
	if !cl.Converged() {
		t.Fatal("views did not converge after failure")
	}
	if n := cl.MustService(0).Client().Len(); n != 7 {
		t.Fatalf("members = %d after failure, want 7", n)
	}
	if cl.MustService(0).IsLeader(0) != true {
		t.Fatal("node 0 should lead its group")
	}
}

func TestServeDirectoryIPC(t *testing.T) {
	cl := NewCluster(Clustered(2, 3))
	cl.MustService(4).RegisterService("KV", "0-3")
	cl.StartAll()
	cl.Run(15 * time.Second)
	srv, err := cl.MustService(0).ServeDirectory()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialDirectory(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Lookup("KV", "2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != 4 {
		t.Fatalf("IPC lookup = %+v", got)
	}
	// A graceful departure propagates through the socket view too.
	cl.MustService(4).Leave()
	cl.Run(5 * time.Second)
	got, err = c.Lookup("KV", "2")
	if err != nil || len(got) != 0 {
		t.Fatalf("departed provider still served over IPC: %+v, %v", got, err)
	}
}

func TestChangesSincePublicAPI(t *testing.T) {
	cl := NewCluster(Clustered(2, 3))
	cl.StartAll()
	cl.Run(15 * time.Second)
	mark := cl.Now()
	cl.MustService(4).Stop()
	cl.Run(20 * time.Second)
	ev, complete := cl.MustService(0).Client().ChangesSince(mark)
	if !complete {
		t.Fatal("history incomplete over a short window")
	}
	if len(ev) != 1 || ev[0].Node != 4 {
		t.Fatalf("events = %+v, want one leave of node 4", ev)
	}
	if ev[0].Type.String() != "leave" {
		t.Fatalf("event type = %v", ev[0].Type)
	}
}

func TestGracefulLeavePublicAPI(t *testing.T) {
	cl := NewCluster(Clustered(2, 4))
	cl.StartAll()
	cl.Run(15 * time.Second)
	before := cl.Now()
	cl.MustService(6).Leave()
	for !cl.Converged() {
		cl.Run(100 * time.Millisecond)
	}
	if lag := cl.Now() - before; lag > time.Second {
		t.Fatalf("graceful leave took %v to converge; want sub-second", lag)
	}
	if st := cl.MustService(0).Stats(); st.HeartbeatsSent == 0 {
		t.Fatal("public Stats empty")
	}
}

func TestLossySimConverges(t *testing.T) {
	cl := NewClusterSeed(Clustered(2, 5), 9)
	cl.SetLossProbability(0.03)
	cl.StartAll()
	if !cl.WaitConverged(time.Second, 60*time.Second) {
		t.Fatal("lossy cluster never converged")
	}
}
