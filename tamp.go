// Package tamp is the public API of the Topology-Adaptive Membership
// Protocol library, a full reproduction of Chu, Zhou and Yang, "An
// Efficient Topology-Adaptive Membership Protocol for Large-Scale Network
// Services" (IPDPS 2005).
//
// The library provides:
//
//   - MService / MClient, the membership service and client APIs modelled
//     on the paper's Figures 8-9: nodes publish services, partitions, and
//     key/value attributes; every node holds a complete yellow-page
//     directory queryable with regular expressions.
//   - A deterministic cluster simulator (topologies of hosts, layer-2
//     switches and layer-3 routers; TTL-scoped multicast; packet loss;
//     partitions) on which the protocol — and the paper's two baselines,
//     all-to-all heartbeating and gossip — run unchanged.
//   - The Neptune-like service invocation layer with random-polling load
//     balancing, and membership proxies for multi-data-center deployments.
//
// # Quick start
//
//	cl := tamp.NewCluster(tamp.Clustered(5, 20))
//	cl.MustService(7).RegisterService("Cache", "0-3")
//	cl.StartAll()
//	cl.Run(15 * time.Second)
//	machines, _ := cl.MustService(0).Client().LookupService("Cache", "2")
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package tamp

import (
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// NodeID identifies a cluster node (the lowest-ID member of each group is
// elected leader, as in the paper).
type NodeID = membership.NodeID

// KV is one published attribute key/value pair.
type KV = membership.KV

// Topology is a physical cluster layout.
type Topology = topology.Topology

// HostID is a host index within a topology.
type HostID = topology.HostID

// Re-exported topology constructors.
var (
	// FlatLAN is n hosts on one switch: a single TTL-1 group.
	FlatLAN = topology.FlatLAN
	// Clustered is the paper's evaluation layout: groups of hosts behind
	// switches on one core router.
	Clustered = topology.Clustered
	// ThreeTier is pods of racks of hosts: a three-level membership tree.
	ThreeTier = topology.ThreeTier
	// MultiDC is several Clustered data centers joined by WAN links that
	// multicast cannot cross.
	MultiDC = topology.MultiDC
	// Figure4 is the paper's non-transitive TTL example topology.
	Figure4 = topology.Figure4
)

// Machine describes one node returned by a lookup, with the attributes and
// service parameters it published (the paper's MachineList element).
type Machine struct {
	Node       NodeID
	Service    string
	Partitions []int32
	Params     []KV
	Attrs      []KV
}

// MachineList is the result of LookupService.
type MachineList []Machine

// Nodes returns the distinct node IDs in the list, in order of appearance.
func (ml MachineList) Nodes() []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, m := range ml {
		if !seen[m.Node] {
			seen[m.Node] = true
			out = append(out, m.Node)
		}
	}
	return out
}

// Sim owns one simulated cluster world: virtual clock, network, topology.
type Sim struct {
	eng *sim.Engine
	net *netsim.Network
	top *topology.Topology
}

// NewSim creates a simulation over a topology with the given RNG seed.
func NewSim(top *Topology, seed int64) *Sim {
	eng := sim.NewEngine(seed)
	return &Sim{eng: eng, net: netsim.New(eng, top), top: top}
}

// Run advances virtual time by d, executing all due protocol events.
func (s *Sim) Run(d time.Duration) { s.eng.Run(s.eng.Now() + d) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.eng.Now() }

// SetLossProbability injects independent per-receiver packet loss.
func (s *Sim) SetLossProbability(p float64) { s.net.SetLossProbability(p) }

// SetLatencyJitter makes delivery latencies vary by ±frac, allowing packet
// reordering.
func (s *Sim) SetLatencyJitter(frac float64) { s.net.SetLatencyJitter(frac) }

// NetworkStats are aggregate traffic counters for the simulated network.
type NetworkStats = netsim.Stats

// NetworkStats returns traffic totals across all endpoints.
func (s *Sim) NetworkStats() NetworkStats { return s.net.TotalStats() }

// ResetNetworkStats zeroes the traffic counters (e.g. after warm-up).
func (s *Sim) ResetNetworkStats() { s.net.ResetStats() }

// Topology returns the underlying topology (for failure injection).
func (s *Sim) Topology() *Topology { return s.top }
