package tamp

// One benchmark per table/figure in the paper's evaluation section, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its figure's rows on every iteration and logs the rendered
// table once (run with -v to see it); `go test -bench=Figure -benchmem`
// reproduces the full evaluation. cmd/tampbench prints the same tables
// without the benchmark harness.

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func logOnce(b *testing.B, i int, fig *metrics.Figure) {
	if i == 0 {
		b.Logf("\n%s", fig.Render())
	}
}

// BenchmarkFigure2AllToAllOverhead regenerates Figure 2: per-node CPU and
// bandwidth overhead of the all-to-all scheme versus cluster size,
// emulated — as in the paper — by scaling the received heartbeat rate, with
// the per-packet cost measured from this implementation's real receive
// path.
func BenchmarkFigure2AllToAllOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		per := harness.MeasureReceiveCost(2000)
		fig := harness.Figure2(per, []int{250, 500, 1000, 2000, 4000})
		logOnce(b, i, fig)
	}
}

// BenchmarkFigure11Bandwidth regenerates Figure 11: aggregate bandwidth
// versus cluster size (20..100 nodes, 20 per network) for all three
// schemes.
func BenchmarkFigure11Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure11(harness.DefaultOptions())
		logOnce(b, i, fig)
	}
}

// BenchmarkFigure12FailureDetection regenerates Figure 12: failure
// detection time versus cluster size for all three schemes.
func BenchmarkFigure12FailureDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure12(harness.DefaultOptions())
		logOnce(b, i, fig)
	}
}

// BenchmarkFigure13ViewConvergence regenerates Figure 13: view convergence
// time versus cluster size for all three schemes.
func BenchmarkFigure13ViewConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure13(harness.DefaultOptions())
		logOnce(b, i, fig)
	}
}

// BenchmarkFigure14ProxyFailover regenerates Figure 14: response time and
// throughput of the two-data-center search service across the failure
// (t=20s) and recovery (t=40s) of data center A's document retrieval
// service.
func BenchmarkFigure14ProxyFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure14(harness.DefaultFigure14Options())
		logOnce(b, i, fig)
	}
}

// BenchmarkSection4Analysis regenerates the Section 4 analytic comparison
// (detection time and bandwidth under the fixed-frequency regime).
func BenchmarkSection4Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Section4([]int{20, 100, 500, 1000, 4000})
		logOnce(b, i, fig)
	}
}

// BenchmarkAblationPiggyback sweeps the update piggyback depth (paper: 3)
// under loss, counting full-directory sync fallbacks.
func BenchmarkAblationPiggyback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.AblationPiggyback(harness.Sweep{}, []int{0, 1, 3, 6, 8}, 0.05, 11)
		logOnce(b, i, fig)
	}
}

// BenchmarkAblationGroupSize sweeps the membership group size (paper: 20
// per network) at fixed cluster size.
func BenchmarkAblationGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.AblationGroupSize(harness.Sweep{}, 40, []int{5, 10, 20, 40}, 13)
		logOnce(b, i, fig)
	}
}

// BenchmarkAblationMaxLoss sweeps the failure-declaration threshold
// (paper: 5 consecutive losses).
func BenchmarkAblationMaxLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.AblationMaxLoss(harness.Sweep{}, []int{2, 3, 5, 8}, 0.05, 17)
		logOnce(b, i, fig)
	}
}

// BenchmarkWirePacketDecode measures the hot receive-path cost that
// Figure 2's CPU model is built from.
func BenchmarkWirePacketDecode(b *testing.B) {
	per := harness.MeasureReceiveCost(b.N + 1)
	b.ReportMetric(float64(per.Nanoseconds()), "ns/packet")
}

// BenchmarkSimulatedClusterSecond measures simulator throughput: the cost
// of one virtual second of a 100-node hierarchical cluster in steady
// state.
func BenchmarkSimulatedClusterSecond(b *testing.B) {
	cl := NewCluster(Clustered(5, 20))
	cl.StartAll()
	cl.Run(20 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Run(time.Second)
	}
}

// BenchmarkAccuracyUnderChurn quantifies the paper's "complete and
// accurate" requirement: view completeness/accuracy under a kill-restart
// churn schedule at several loss rates, for all three schemes.
func BenchmarkAccuracyUnderChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Accuracy(harness.DefaultAccuracyOptions())
		logOnce(b, i, fig)
	}
}

// BenchmarkBandwidthBreakdown dissects the hierarchical scheme's traffic
// by packet type, quantifying the anti-entropy additions' share.
func BenchmarkBandwidthBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.BandwidthBreakdown(harness.DefaultOptions())
		logOnce(b, i, fig)
	}
}

// BenchmarkDetectionDistribution reports detection-time percentiles over
// independent failure trials (the spread behind Figure 12's points).
func BenchmarkDetectionDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := harness.DefaultOptions()
		fig := harness.DetectionDistribution(harness.Hierarchical, o, 60, 10)
		logOnce(b, i, fig)
	}
}

// BenchmarkAblationGossipFanout sweeps gossip fanout (bandwidth vs
// convergence trade-off behind the paper's fanout-1 comparison).
func BenchmarkAblationGossipFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.AblationGossipFanout(harness.Sweep{}, 40, []int{1, 2, 3, 5}, 7)
		logOnce(b, i, fig)
	}
}
