package tamp

import (
	"time"

	"repro/internal/membership"
	"repro/internal/proxy"
	"repro/internal/service"
	"repro/internal/topology"
)

// Handler processes one application request on a provider node: it
// receives the partition the request addresses and the request payload,
// and returns the reply payload.
type Handler = service.Handler

// Invocation errors, re-exported from the service layer.
var (
	// ErrUnavailable: no provider for the (service, partition) is known.
	ErrUnavailable = service.ErrUnavailable
	// ErrTimeout: the provider (or proxy chain) did not reply in time.
	ErrTimeout = service.ErrTimeout
	// ErrRejected: the provider failed the request or a proxy rejected it.
	ErrRejected = service.ErrRejected
)

// App is a full application node: a membership daemon plus the
// Neptune-like service runtime for hosting and invoking services with
// random-polling load balancing, and optionally a membership proxy for
// multi-data-center deployments.
type App struct {
	*MService
	rt    *service.Runtime
	proxy *proxy.Proxy
}

// AppConfig tunes an App beyond the defaults.
type AppConfig struct {
	// PollSize is the number of candidates polled for load before
	// dispatch (2 = power of two choices; the default).
	PollSize int
	// RequestTimeout bounds one invocation end to end (default 2s).
	RequestTimeout time.Duration
	// EnableLoadPush turns on the §6.1 interest-based load dissemination.
	EnableLoadPush bool
}

// NewApp creates an application node on host h of the simulation. Call
// Run to start it.
func NewApp(s *Sim, h HostID) *App { return NewAppConfig(s, h, AppConfig{}) }

// NewAppConfig is NewApp with explicit tuning.
func NewAppConfig(s *Sim, h HostID, ac AppConfig) *App {
	ms, err := NewMService(s, h, "")
	if err != nil {
		panic(err) // defaults cannot fail
	}
	scfg := service.DefaultConfig()
	if ac.PollSize > 0 {
		scfg.PollSize = ac.PollSize
	}
	if ac.RequestTimeout > 0 {
		scfg.RequestTimeout = ac.RequestTimeout
	}
	scfg.EnableLoadPush = ac.EnableLoadPush
	a := &App{MService: ms}
	a.rt = service.NewRuntime(scfg, s.eng, s.net.Endpoint(h), ms.node)
	return a
}

// Provide registers a service implementation on this node: it is
// published through the membership service and served locally.
// serviceTime is the simulated per-request processing time (requests
// queue FIFO).
func (a *App) Provide(name, partitions string, serviceTime time.Duration, h Handler, params ...KV) error {
	return a.rt.Register(name, partitions, serviceTime, h, params...)
}

// Invoke performs one location-transparent invocation: the provider is
// found in the local yellow-page directory and chosen by random-polling
// load balancing; if no local provider exists and a proxy is attached,
// the request crosses data centers. The callback runs exactly once on the
// simulation goroutine.
func (a *App) Invoke(serviceName string, partition int32, payload []byte, cb func([]byte, error)) {
	a.rt.Invoke(serviceName, partition, payload, cb)
}

// InvokeNode sends the request to one specific provider, bypassing load
// balancing — the building block for client-driven replication (e.g.
// write-through to every replica of a partition).
func (a *App) InvokeNode(n NodeID, serviceName string, partition int32, payload []byte, cb func([]byte, error)) {
	a.rt.InvokeNode(n, serviceName, partition, payload, cb)
}

// InvokeWait is Invoke that drives the simulation until the reply arrives
// or the request times out, returning the result synchronously — the
// convenient form for examples and tests.
func (a *App) InvokeWait(serviceName string, partition int32, payload []byte) ([]byte, error) {
	var out []byte
	var err error
	done := false
	a.Invoke(serviceName, partition, payload, func(b []byte, e error) {
		out, err, done = b, e, true
	})
	limit := a.s.Now() + 2*time.Minute
	for !done && a.s.Now() < limit {
		a.s.Run(10 * time.Millisecond)
	}
	if !done {
		return nil, ErrTimeout
	}
	return out, err
}

// Load returns this node's instantaneous service queue length.
func (a *App) Load() uint32 { return a.rt.Load() }

// DataCenters bundles a multi-data-center deployment: apps on every host
// plus membership proxies per data center sharing one VIP table.
type DataCenters struct {
	*Sim
	Apps    []*App
	Proxies []*Proxy
	vip     *proxy.VIPTable
}

// Proxy is a public handle to one membership proxy daemon.
type Proxy struct {
	p *proxy.Proxy
	h HostID
}

// Host returns the host the proxy runs on.
func (p *Proxy) Host() HostID { return p.h }

// IsLeader reports whether this proxy holds its data center's virtual IP.
func (p *Proxy) IsLeader() bool { return p.p.IsLeader() }

// Stop kills the proxy daemon (the node's membership daemon keeps
// running unless stopped separately).
func (p *Proxy) Stop() { p.p.Stop() }

// NewDataCenters builds apps over a MultiDC topology and places
// proxiesPerDC membership proxies on the first hosts of each data center.
// Invocations that cannot be served locally are forwarded through the
// proxies automatically.
func NewDataCenters(top *Topology, proxiesPerDC int, seed int64) *DataCenters {
	s := NewSim(top, seed)
	d := &DataCenters{Sim: s, vip: proxy.NewVIPTable()}
	dcs := top.NumDataCenters()
	for h := 0; h < top.NumHosts(); h++ {
		hid := HostID(h)
		ms, err := NewMService(s, hid, "")
		if err != nil {
			panic(err)
		}
		scfg := service.DefaultConfig()
		dc := top.HostDC(hid)
		scfg.ProxyAddr = func() (topology.HostID, bool) { return d.vip.Get(dc) }
		a := &App{MService: ms}
		a.rt = service.NewRuntime(scfg, s.eng, s.net.Endpoint(hid), ms.node)
		d.Apps = append(d.Apps, a)
	}
	for dc := 0; dc < dcs; dc++ {
		var remotes []int
		for o := 0; o < dcs; o++ {
			if o != dc {
				remotes = append(remotes, o)
			}
		}
		hosts := top.HostsInDC(dc)
		for i := 0; i < proxiesPerDC && i < len(hosts); i++ {
			h := hosts[i]
			pcfg := proxy.DefaultConfig(dc, remotes)
			pcfg.ProxyTTL = top.Diameter()
			p := proxy.New(pcfg, s.eng, s.net.Endpoint(h), d.Apps[h].rt, d.vip)
			a := d.Apps[h]
			a.proxy = p
			d.Proxies = append(d.Proxies, &Proxy{p: p, h: HostID(h)})
		}
	}
	return d
}

// StartAll runs every membership daemon and proxy.
func (d *DataCenters) StartAll() {
	for _, a := range d.Apps {
		a.Run()
	}
	for _, p := range d.Proxies {
		p.p.Start()
	}
}

// App returns host h's application node.
func (d *DataCenters) App(h HostID) *App { return d.Apps[h] }

// VIP returns the current proxy address of a data center, if elected.
func (d *DataCenters) VIP(dc int) (HostID, bool) { return d.vip.Get(dc) }

// Converged reports whether every running daemon within each data center
// sees all running daemons of its own data center (cross-DC membership is
// summarized through proxies, not mirrored per node).
func (d *DataCenters) Converged() bool {
	top := d.Sim.top
	for dc := 0; dc < top.NumDataCenters(); dc++ {
		var want []membership.NodeID
		for _, h := range top.HostsInDC(dc) {
			if d.Apps[h].Running() {
				want = append(want, d.Apps[h].ID())
			}
		}
		for _, h := range top.HostsInDC(dc) {
			a := d.Apps[h]
			if !a.Running() {
				continue
			}
			if !membership.ViewEqual(a.Client().Members(), want) {
				return false
			}
		}
	}
	return true
}

// WaitConverged runs until per-DC convergence or the deadline elapses.
func (d *DataCenters) WaitConverged(step, deadline time.Duration) bool {
	limit := d.Now() + deadline
	for d.Now() < limit {
		if d.Converged() {
			return true
		}
		d.Run(step)
	}
	return d.Converged()
}
